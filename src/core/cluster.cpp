#include "core/cluster.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/error.h"
#include "storage/corruption_injector.h"
#include "storage/wal_format.h"

namespace remus::core {

#if !defined(NDEBUG) || defined(REMUS_SINGLE_CONSUMER_CHECKS)
cluster::consumer_guard::consumer_guard(const cluster& c) : c_(c) {
  const std::thread::id me = std::this_thread::get_id();
  std::thread::id expected{};
  if (!c_.consumer_.compare_exchange_strong(expected, me,
                                            std::memory_order_acquire) &&
      expected != me) {
    // Two threads inside one cluster at once: a shard-confinement bug in
    // whoever drives this cluster (see the guard's contract in cluster.h).
    std::fprintf(stderr,
                 "remus: cluster single-consumer violation — a second thread "
                 "entered a cluster another thread is still driving\n");
    std::abort();
  }
  ++c_.consumer_depth_;  // owned by the consumer thread; plain is race-free
}

cluster::consumer_guard::~consumer_guard() {
  if (--c_.consumer_depth_ == 0) {
    c_.consumer_.store(std::thread::id{}, std::memory_order_release);
  }
}
#endif

cluster::cluster(cluster_config cfg)
    : cfg_(std::move(cfg)), net_(cfg_.net, rng(cfg_.seed ^ 0x6e657477ULL)),
      rng_(cfg_.seed) {
  if (cfg_.n == 0) throw driver_error("cluster: n must be >= 1");
  if (!cfg_.policy.coherent()) throw driver_error("cluster: incoherent policy");
  if (cfg_.policy.read_leases && cfg_.n > 64) {
    // Lease notes carry holders as a 64-bit mask.
    throw driver_error("cluster: read leases require n <= 64");
  }
  queue_.set_executor(this);
  nodes_.reserve(cfg_.n);
  all_processes_.reserve(cfg_.n);
  unicast_to_.resize(1);
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    all_processes_.push_back(process_id{i});
    auto nd = std::make_unique<node>(cfg_.disk);
    if (cfg_.wal_storage) {
      storage::wal_store_config wc;
      wc.compact_min_bytes = cfg_.wal_compact_min_bytes;
      auto wal = std::make_unique<storage::wal_store>(
          std::make_unique<storage::memory_media>(), wc);
      nd->wal = wal.get();
      nd->store = std::move(wal);
    } else {
      nd->store = std::make_unique<storage::memory_store>();
    }
    nd->core = std::make_unique<proto::quorum_core>(cfg_.policy, process_id{i}, cfg_.n,
                                                    *nd->store, rng_.next_u64());
    proto::outputs out;
    nd->core->start(out);
    if (!out.empty()) throw driver_error("cluster: start() must not emit effects");
    nodes_.push_back(std::move(nd));
  }
}

cluster::node& cluster::node_at(process_id p) {
  if (!p.valid() || p.index >= nodes_.size()) throw driver_error("cluster: bad process id");
  return *nodes_[p.index];
}

const cluster::node& cluster::node_at(process_id p) const {
  if (!p.valid() || p.index >= nodes_.size()) throw driver_error("cluster: bad process id");
  return *nodes_[p.index];
}

cluster::context& cluster::ctx_of(node& nd, proto::exec_context c) {
  return c == proto::exec_context::client ? nd.client_ctx : nd.listener_ctx;
}

proto::outputs& cluster::acquire_outputs() {
  if (outputs_depth_ == outputs_slabs_.size()) {
    outputs_slabs_.push_back(std::make_unique<proto::outputs>());
  }
  return *outputs_slabs_[outputs_depth_++];
}

void cluster::release_outputs(proto::outputs& out) {
  out.clear();  // keeps buffer capacity; the next lease reuses it
  --outputs_depth_;
}

bool cluster::is_ready(process_id p) const {
  const node& nd = node_at(p);
  return nd.up && nd.core->ready();
}

proto::quorum_core& cluster::core_of(process_id p) { return *node_at(p).core; }

storage::stable_store& cluster::store_of(process_id p) { return *node_at(p).store; }

storage::wal_store* cluster::wal_of(process_id p) { return node_at(p).wal; }

std::uint64_t cluster::durable_stores(process_id p) const {
  return node_at(p).store->store_count();
}

// ---- Workload scheduling ----------------------------------------------------

cluster::op_handle cluster::submit_write(process_id p, register_id reg, value v,
                                         time_ns at) {
  const consumer_guard guard(*this);
  (void)node_at(p);  // validate
  op_result r;
  r.submitted = true;
  r.is_read = false;
  r.p = p;
  r.reg = reg;
  r.v = std::move(v);
  results_.push_back(std::move(r));
  const op_handle h = results_.size() - 1;
  queue_.schedule_plain(std::max(at, now()), sim::event_kind::op_dispatch, p, h);
  return h;
}

cluster::op_handle cluster::submit_read(process_id p, register_id reg, time_ns at) {
  const consumer_guard guard(*this);
  (void)node_at(p);
  op_result r;
  r.submitted = true;
  r.is_read = true;
  r.p = p;
  r.reg = reg;
  results_.push_back(std::move(r));
  const op_handle h = results_.size() - 1;
  queue_.schedule_plain(std::max(at, now()), sim::event_kind::op_dispatch, p, h);
  return h;
}

cluster::op_handle cluster::submit_write_batch(process_id p,
                                               std::vector<proto::write_op> ops,
                                               time_ns at) {
  const consumer_guard guard(*this);
  (void)node_at(p);
  if (ops.empty()) throw driver_error("cluster: empty write batch");
  op_result r;
  r.submitted = true;
  r.is_read = false;
  r.is_batch = true;
  r.p = p;
  r.batch_args = std::move(ops);
  results_.push_back(std::move(r));
  const op_handle h = results_.size() - 1;
  queue_.schedule_plain(std::max(at, now()), sim::event_kind::op_dispatch, p, h);
  return h;
}

cluster::op_handle cluster::submit_read_batch(process_id p, std::vector<register_id> regs,
                                              time_ns at) {
  const consumer_guard guard(*this);
  (void)node_at(p);
  if (regs.empty()) throw driver_error("cluster: empty read batch");
  op_result r;
  r.submitted = true;
  r.is_read = true;
  r.is_batch = true;
  r.p = p;
  r.batch_args.reserve(regs.size());
  for (const register_id reg : regs) r.batch_args.push_back(proto::write_op{reg, {}});
  results_.push_back(std::move(r));
  const op_handle h = results_.size() - 1;
  queue_.schedule_plain(std::max(at, now()), sim::event_kind::op_dispatch, p, h);
  return h;
}

void cluster::submit_crash(process_id p, time_ns at, crash_style style) {
  const consumer_guard guard(*this);
  (void)node_at(p);
  // The style rides in the event's `a` payload (POD tagged-union field).
  queue_.schedule_plain(std::max(at, now()), sim::event_kind::crash, p,
                        static_cast<std::uint64_t>(style));
}

void cluster::submit_recover(process_id p, time_ns at) {
  const consumer_guard guard(*this);
  if (cfg_.policy.crash_stop) {
    throw driver_error("cluster: recovery is impossible in the crash-stop model");
  }
  (void)node_at(p);
  queue_.schedule_plain(std::max(at, now()), sim::event_kind::recover, p);
}

void cluster::apply(const sim::fault_plan& plan, time_ns offset) {
  for (const auto& e : plan.events) {
    if (e.kind == sim::fault_kind::crash) {
      submit_crash(e.target, e.at + offset);
    } else {
      submit_recover(e.target, e.at + offset);
    }
  }
}

// ---- Execution ---------------------------------------------------------------

bool cluster::run_until_idle(std::uint64_t max_events) {
  const consumer_guard guard(*this);
  queue_.run(max_events);
  return queue_.empty();
}

void cluster::run_for(time_ns d) {
  const consumer_guard guard(*this);
  queue_.run_until(now() + d);
}

value cluster::read(process_id p, register_id reg) {
  const consumer_guard guard(*this);
  const op_handle h = submit_read(p, reg, now());
  while (!results_[h].completed && queue_.step()) {
  }
  if (!results_[h].completed) throw driver_error("cluster: read did not complete");
  return results_[h].v;
}

void cluster::write(process_id p, register_id reg, value v) {
  const consumer_guard guard(*this);
  const op_handle h = submit_write(p, reg, std::move(v), now());
  while (!results_[h].completed && queue_.step()) {
  }
  if (!results_[h].completed) throw driver_error("cluster: write did not complete");
}

const cluster::op_result& cluster::result(op_handle h) const {
  if (h >= results_.size()) throw driver_error("cluster: bad op handle");
  return results_[h];
}

std::vector<history::tagged_op> cluster::tagged_operations() const {
  std::vector<history::tagged_op> out;
  for (const op_result& r : results_) {
    if (!r.completed) continue;
    if (r.is_batch) {
      // A batched op contributes one tagged_op per register it touched.
      for (const proto::batch_entry& e : r.batch_result) {
        history::tagged_op op;
        op.is_read = r.is_read;
        op.p = r.p;
        op.reg = e.reg;
        op.applied = e.ts;
        op.val = e.val;
        op.invoked_at = r.invoked_at;
        op.replied_at = r.completed_at;
        out.push_back(std::move(op));
      }
      continue;
    }
    history::tagged_op op;
    op.is_read = r.is_read;
    op.p = r.p;
    op.reg = r.reg;
    op.applied = r.applied;
    op.val = r.v;
    op.invoked_at = r.invoked_at;
    op.replied_at = r.completed_at;
    out.push_back(std::move(op));
  }
  return out;
}

metrics::op_collector cluster::collect() const {
  metrics::op_collector col;
  for (const op_result& r : results_) {
    if (r.completed) col.add(r.sample);
  }
  return col;
}

// ---- Event dispatch ----------------------------------------------------------

void cluster::execute(sim::sim_event& ev) {
  switch (ev.kind) {
    case sim::event_kind::message:
      deliver_message(ev.target, ev.msg);
      return;
    case sim::event_kind::log_done:
      deliver_log_done(ev.target, ev.a, ev.log_key, ev.log_record, ev.log_obsoletes,
                       ev.incarnation);
      return;
    case sim::event_kind::timer:
      deliver_timer(ev.target, ev.a, ev.incarnation);
      return;
    case sim::event_kind::lease_expiry:
      deliver_lease_expiry(ev.target, ev.a, ev.incarnation);
      return;
    case sim::event_kind::op_dispatch:
      handle_op_dispatch(ev);
      return;
    case sim::event_kind::crash:
      do_crash(ev.target, ev.a == sim::no_event_arg
                              ? crash_style::clean
                              : static_cast<crash_style>(ev.a));
      return;
    case sim::event_kind::recover:
      do_recover(ev.target);
      return;
    case sim::event_kind::none:
    case sim::event_kind::thunk:
      return;  // thunks run inside the queue; none is an empty slot
  }
}

// ---- Node mechanics ----------------------------------------------------------

void cluster::handle_op_dispatch(const sim::sim_event& ev) {
  node& nd = nd_of(ev.target);
  if (ev.a == sim::no_event_arg) {
    // Redispatch pump armed while the client context was busy; stale after a
    // crash (the queued ops it was pumping were dropped with the client).
    if (ev.incarnation == nd.incarnation) dispatch_next_op(ev.target);
    return;
  }
  nd.op_queue.push_back(pending_invocation{ev.a, results_[ev.a].is_read});
  dispatch_next_op(ev.target);
}

void cluster::dispatch_next_op(process_id p) {
  node& nd = nd_of(p);
  if (!nd.up || !nd.core->is_up() || !nd.core->ready() || !nd.core->idle()) return;
  if (nd.active_op || nd.op_queue.empty()) return;
  if (nd.client_ctx.busy_until > now()) {
    queue_.schedule_plain(nd.client_ctx.busy_until, sim::event_kind::op_dispatch, p,
                          sim::no_event_arg, nd.incarnation);
    return;
  }

  const pending_invocation inv = nd.op_queue.front();
  nd.op_queue.pop_front();
  nd.client_ctx.busy_until = now() + cfg_.process_step_cost;
  nd.active_op = inv.handle;
  nd.active_invoked_at = now();

  outputs_lease lease(*this);
  const op_result& pending = results_[inv.handle];
  if (pending.is_batch) {
    // One invoke event per register: each register's projection of the
    // history sees a plain single-register operation.
    if (inv.is_read) {
      batch_regs_scratch_.clear();
      for (const proto::write_op& a : pending.batch_args) {
        recorder_.invoke_read(p, a.reg, now());
        batch_regs_scratch_.push_back(a.reg);
      }
      nd.core->invoke_read_batch(batch_regs_scratch_, lease.out);
    } else {
      for (const proto::write_op& a : pending.batch_args) {
        recorder_.invoke_write(p, a.reg, a.val, now());
      }
      nd.core->invoke_write_batch(pending.batch_args, lease.out);
    }
  } else if (inv.is_read) {
    recorder_.invoke_read(p, pending.reg, now());
    nd.core->invoke_read(pending.reg, lease.out);
  } else {
    const value& v = pending.v;  // the write's argument
    recorder_.invoke_write(p, pending.reg, v, now());
    nd.core->invoke_write(pending.reg, v, lease.out);
  }
  // Fresh attribution window for this op (its identity is the core's current
  // (epoch, op_seq); effects emitted below match it).
  nd.attr_messages = 0;
  nd.attr_logs = 0;
  nd.attr_net_bytes = 0;
  execute_effects(p, lease.out);
}

void cluster::deliver_message(process_id p, const proto::shared_message& mh) {
  node& nd = nd_of(p);
  if (!nd.up || !nd.core->is_up()) return;  // dropped at a dead host
  const proto::message& m = *mh;
  // Acks return to the client thread; requests hit the listener thread.
  context& ctx = proto::is_ack_kind(m.kind) ? nd.client_ctx : nd.listener_ctx;
  if (ctx.busy_until > now()) {
    // The owning thread is busy (e.g. blocked on a synchronous store); the
    // message waits in the socket buffer. Requeueing shares the same payload.
    queue_.schedule_message(ctx.busy_until, p, mh);
    return;
  }
  ctx.busy_until = now() + cfg_.process_step_cost;
  outputs_lease lease(*this);
  nd.core->on_message(m, lease.out);
  execute_effects(p, lease.out);
}

void cluster::deliver_log_done(process_id p, std::uint64_t token, storage::record_key key,
                               const bytes& record,
                               std::span<const storage::record_key> obsoletes,
                               std::uint64_t incarnation) {
  node& nd = nd_of(p);
  if (nd.incarnation != incarnation || !nd.up || !nd.core->is_up()) {
    // The process crashed while the store was in flight: under the
    // conservative durability model the record never hit the platter.
    return;
  }
  nd.store->store_and_obsolete(key, record, obsoletes);  // durability point
  outputs_lease lease(*this);
  nd.core->on_log_done(token, lease.out);
  execute_effects(p, lease.out);
}

void cluster::deliver_timer(process_id p, std::uint64_t token, std::uint64_t incarnation) {
  node& nd = nd_of(p);
  if (nd.incarnation != incarnation || !nd.up || !nd.core->is_up()) return;
  context& ctx = nd.client_ctx;
  if (ctx.busy_until > now()) {
    queue_.schedule_plain(ctx.busy_until, sim::event_kind::timer, p, token, incarnation);
    return;
  }
  ctx.busy_until = now() + cfg_.process_step_cost;
  outputs_lease lease(*this);
  nd.core->on_timer(token, lease.out);
  execute_effects(p, lease.out);
}

void cluster::deliver_lease_expiry(process_id p, std::uint64_t token,
                                   std::uint64_t incarnation) {
  node& nd = nd_of(p);
  if (nd.incarnation != incarnation || !nd.up || !nd.core->is_up()) return;
  // No busy-context requeue: a deadline must never slip past its virtual
  // time — the fast path's safety rests on holders expiring no later than
  // their grantors' records — and expiry is pure bookkeeping (no I/O, no
  // blocking), so delivering it out-of-band is sound.
  outputs_lease lease(*this);
  nd.core->on_lease_expiry(token, lease.out);
  execute_effects(p, lease.out);
}

void cluster::route_message(process_id from, const std::vector<process_id>& tos,
                            const proto::message& m) {
  route_scratch_.clear();
  net_.route(now(), from, tos, proto::wire_size(m), static_cast<std::uint8_t>(m.kind),
             m.op_seq, m.round, route_scratch_);
  if (route_scratch_.empty()) return;
  // One pooled payload for the whole broadcast; every delivery (and every
  // busy-requeue of one) shares it by refcount.
  proto::shared_message mh = msg_pool_.make(m);
  const std::size_t last = route_scratch_.size() - 1;
  for (std::size_t i = 0; i < last; ++i) {
    queue_.schedule_message(route_scratch_[i].deliver_at, route_scratch_[i].to, mh);
  }
  queue_.schedule_message(route_scratch_[last].deliver_at, route_scratch_[last].to,
                          std::move(mh));
}

void cluster::execute_effects(process_id p, proto::outputs& out) {
  node& nd = nd_of(p);

  for (proto::log_request& lr : out.logs) {
    // The piggybacked tombstones ride the same synchronous store; charge
    // their key bytes against the same disk transfer.
    std::size_t size = lr.record.size() + lr.key.encoded_size();
    for (const storage::record_key& k : lr.obsoletes) size += k.encoded_size();
    const time_ns done_at = nd.disk.issue(now(), size);
    ctx_of(nd, lr.ctx).busy_until = done_at;  // synchronous store blocks its thread
    if (lr.op_seq != 0) {
      node& o = nd_of(lr.origin);
      if (o.active_op && o.core->current_op_seq() == lr.op_seq &&
          o.core->current_epoch() == lr.epoch) {
        o.attr_logs += 1;
      }
    } else {
      recovery_stores_ += 1;
    }
    if (nd.wal != nullptr) {
      // Remember the frame image this store will append, so a crash before
      // done_at can tear exactly these bytes (do_crash).
      nd.last_log_frame.clear();
      storage::append_wal_frame(nd.last_log_frame, storage::wal_frame_kind::record,
                                lr.key, lr.record);
      for (const storage::record_key& k : lr.obsoletes) {
        if (k == lr.key) continue;
        storage::append_wal_frame(nd.last_log_frame,
                                  storage::wal_frame_kind::tombstone, k, {});
      }
      nd.last_log_done_at = done_at;
    }
    queue_.schedule_log_done(done_at, p, lr.token, nd.incarnation, lr.key, lr.record,
                             lr.obsoletes);
  }

  for (const proto::broadcast_request& b : out.broadcasts) {
    // Acks are never broadcast, so the sender is the op's origin.
    attribute_messages(b.msg.from, b.msg.epoch, b.msg.op_seq, cfg_.n,
                       static_cast<std::uint64_t>(proto::wire_size(b.msg)) * cfg_.n);
    route_message(p, all_processes_, b.msg);
  }

  for (const proto::send_request& s : out.sends) {
    // An ack's cost belongs to the op of its *recipient* (the invoker).
    attribute_messages(proto::is_ack_kind(s.msg.kind) ? s.to : s.msg.from,
                       s.msg.epoch, s.msg.op_seq, 1, proto::wire_size(s.msg));
    unicast_to_[0] = s.to;
    route_message(p, unicast_to_, s.msg);
  }

  for (const proto::timer_request& t : out.timers) {
    queue_.schedule_plain(now() + t.delay, sim::event_kind::timer, p, t.token,
                          nd.incarnation);
  }

  for (const proto::timer_request& t : out.lease_timers) {
    queue_.schedule_plain(now() + t.delay, sim::event_kind::lease_expiry, p, t.token,
                          nd.incarnation);
  }

  if (out.completion) finish_active_op(p, *out.completion);
  if (out.recovery_complete) {
    nd.recover_scheduled = false;
    dispatch_next_op(p);
  }
}

void cluster::finish_active_op(process_id p, const proto::op_outcome& oc) {
  node& nd = nd_of(p);
  if (!nd.active_op) return;  // recovery round, not a client op
  const op_handle h = *nd.active_op;

  op_result& r = results_[h];
  r.completed = true;
  r.v = oc.result;
  r.applied = oc.applied;
  r.batch_result = oc.batch;
  r.invoked_at = nd.active_invoked_at;
  r.completed_at = now();
  r.sample.is_read = oc.is_read;
  r.sample.latency = now() - nd.active_invoked_at;
  r.sample.causal_logs = oc.causal_logs;
  r.sample.round_trips = oc.round_trips;
  r.sample.total_logs = nd.attr_logs;
  r.sample.messages = nd.attr_messages;
  r.sample.net_bytes = nd.attr_net_bytes;

  if (r.is_batch) {
    // One reply event per register, mirroring the per-register invokes.
    for (const proto::batch_entry& e : oc.batch) {
      if (oc.is_read) {
        recorder_.reply_read(p, e.reg, e.val, now());
      } else {
        recorder_.reply_write(p, e.reg, now());
      }
    }
  } else if (oc.is_read) {
    recorder_.reply_read(p, oc.reg, oc.result, now());
  } else {
    recorder_.reply_write(p, oc.reg, now());
  }
  nd.active_op.reset();
  dispatch_next_op(p);
}

// ---- Register state transfer (shard rebalancing) -----------------------------

cluster::register_snapshot cluster::export_register(register_id reg) const {
  const consumer_guard guard(*this);
  register_snapshot snap;
  snap.reg = reg;
  for (const auto& nd : nodes_) {
    // Stable state survives crashes; read it regardless of up/down.
    if (const auto rec = nd->store->retrieve(proto::written_key_of(reg))) {
      const auto tv = proto::decode_tagged_value(*rec);
      snap.has_state = true;
      if (snap.written_ts < tv.ts) {
        snap.written_ts = tv.ts;
        snap.written_val = tv.val;
      }
    }
    if (const auto rec = nd->store->retrieve(proto::writing_key_of(reg))) {
      const auto tv = proto::decode_tagged_value(*rec);
      snap.has_state = true;
      if (snap.pending_ts < tv.ts) {
        snap.pending_ts = tv.ts;
        snap.pending_val = tv.val;
      }
    }
    // Volatile state can run ahead of stable (an adoption whose log is still
    // in flight) — and is all there is under policies that never log.
    const tag vt = nd->core->replica_tag(reg);
    if (initial_tag < vt) {
      snap.has_state = true;
      if (snap.written_ts < vt) {
        snap.written_ts = vt;
        snap.written_val = nd->core->replica_value(reg);
      }
    }
  }
  snap.has_pending = snap.written_ts < snap.pending_ts;
  if (!snap.has_pending) {
    snap.pending_ts = tag{};
    snap.pending_val = value{};
  }
  return snap;
}

void cluster::import_register(const register_snapshot& snap) {
  const consumer_guard guard(*this);
  if (!snap.has_state) return;
  // Finish a pending write on arrival (the migration plays the role of the
  // source writer's recovery): the installed state is the freshest of the
  // written and pre-logged tags.
  const bool finish_pending = snap.has_pending && snap.written_ts < snap.pending_ts;
  const tag& ts = finish_pending ? snap.pending_ts : snap.written_ts;
  const value& val = finish_pending ? snap.pending_val : snap.written_val;
  if (!(initial_tag < ts)) return;
  const bool log_stable = !cfg_.policy.crash_stop;
  bytes encoded;
  if (log_stable) encoded = proto::encode(proto::tagged_value_record{ts, val});
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    node& nd = *nodes_[i];
    if (log_stable) {
      // Adopt-if-newer into the stable store: never regress a record.
      bool newer = true;
      if (const auto rec = nd.store->retrieve(proto::written_key_of(snap.reg))) {
        newer = proto::decode_tagged_value(*rec).ts < ts;
      }
      if (newer) nd.store->store(proto::written_key_of(snap.reg), encoded);
      if (snap.has_pending && i == 0) {
        // Re-install the pre-log at one process so a future recovery replays
        // the finish-write round, exactly as on the source group.
        bool prelog_newer = true;
        if (const auto rec = nd.store->retrieve(proto::writing_key_of(snap.reg))) {
          prelog_newer = proto::decode_tagged_value(*rec).ts < snap.pending_ts;
        }
        if (prelog_newer) {
          nd.store->store(proto::writing_key_of(snap.reg),
                          proto::encode(proto::tagged_value_record{snap.pending_ts,
                                                                  snap.pending_val}));
        }
      }
    }
    // Crashed cores skip the volatile install: their recovery restores it
    // from the records written above.
    if (nd.up && nd.core->is_up()) nd.core->adopt_if_newer(snap.reg, ts, val);
  }
}

std::uint32_t cluster::evict_register(register_id reg) {
  const consumer_guard guard(*this);
  std::uint32_t leases_dropped = 0;
  for (const auto& nd : nodes_) {
    nd->store->erase(proto::writing_key_of(reg));
    nd->store->erase(proto::written_key_of(reg));
    // The stable grantor record goes regardless of liveness — a crashed
    // grantor's recovery must not resurrect a lease on a group that no
    // longer owns the register. A live core's evict() already counts its
    // volatile registry entry, so the record only counts when the core is
    // down (it is all the state that remains there).
    const bool live = nd->up && nd->core->is_up();
    const bool had_record =
        static_cast<bool>(nd->store->retrieve(proto::lease_key_of(reg)));
    nd->store->erase(proto::lease_key_of(reg));
    if (live) {
      leases_dropped += nd->core->evict(reg);
    } else if (had_record) {
      leases_dropped += 1;
    }
  }
  return leases_dropped;
}

void cluster::for_each_register_with_state(
    const std::function<void(register_id)>& fn) const {
  const consumer_guard guard(*this);
  std::vector<register_id> regs;
  for (const auto& nd : nodes_) {
    const auto collect = [&regs](register_id reg, const bytes&) { regs.push_back(reg); };
    nd->store->for_each(storage::record_area::written, collect);
    nd->store->for_each(storage::record_area::writing, collect);
    nd->core->for_each_register([&regs](register_id reg) { regs.push_back(reg); });
  }
  std::sort(regs.begin(), regs.end());
  regs.erase(std::unique(regs.begin(), regs.end()), regs.end());
  for (const register_id reg : regs) fn(reg);
}

void cluster::do_crash(process_id p, crash_style style) {
  node& nd = nd_of(p);
  if (!nd.up) return;
  nd.up = false;
  nd.incarnation += 1;
  nd.core->crash();
  nd.client_ctx.busy_until = 0;
  nd.listener_ctx.busy_until = 0;
  nd.disk.reset(now());
  if (nd.wal != nullptr) {
    // What the dying disk leaves behind. Only the non-durable tail is ever
    // touched: fsync-acked frames are sacred, so recovery's valid prefix
    // always contains every store the protocol was told is durable.
    const bool mid_append =
        nd.last_log_done_at > now() && !nd.last_log_frame.empty();
    if (mid_append) {
      // Cold path (crash injection): a strictly partial prefix of the
      // in-flight frame image reached the medium.
      bytes torn(nd.last_log_frame.begin(),
                 nd.last_log_frame.begin() +
                     static_cast<std::ptrdiff_t>(
                         rng_.next_below(nd.last_log_frame.size())));
      if (style == crash_style::corrupt_tail && !torn.empty() && rng_.chance(0.5)) {
        storage::flip_random_bit_after(torn, rng_, 0);
      }
      nd.wal->inject_tail_bytes(torn);
    }
    if (style == crash_style::corrupt_tail && rng_.chance(0.7)) {
      // Stray garbage past the last durable frame (e.g. a preallocated
      // region the crash never finished framing).
      bytes garbage;
      storage::append_garbage(garbage, rng_, 1 + rng_.next_below(24));
      nd.wal->inject_tail_bytes(garbage);
    }
    nd.last_log_done_at = 0;
  }
  recorder_.crash(p, now());
  if (nd.active_op) {
    // Invoked but unfinished: the op can never complete (recovery does not
    // resume client operations). The history keeps the unmatched invoke —
    // the checkers' crash-recovery criteria allow either effect outcome.
    results_[*nd.active_op].cut_short = true;
  }
  nd.active_op.reset();
  for (const pending_invocation& inv : nd.op_queue) {
    results_[inv.handle].dropped = true;  // never invoked; client vanished
  }
  nd.op_queue.clear();
}

void cluster::do_recover(process_id p) {
  node& nd = nd_of(p);
  if (nd.up) return;
  nd.up = true;
  recorder_.recover(p, now());
  nd.client_ctx.busy_until = now() + cfg_.recovery_read_latency;
  nd.recover_scheduled = true;
  const std::uint64_t inc = nd.incarnation;
  // retrieve() of the stable records costs one synchronous disk read. Cold
  // path: the generic-thunk fallback is fine here.
  queue_.schedule_at(now() + cfg_.recovery_read_latency, [this, p, inc] {
    node& nd2 = nd_of(p);
    if (nd2.incarnation != inc || !nd2.up) return;  // crashed again meanwhile
    if (nd2.wal != nullptr) {
      // Rebuild the live index from snapshot+log through the checksum
      // scanner; a torn or corrupted tail is discarded here, before the
      // protocol's Recover() reads a single record.
      nd2.wal->reopen();
    }
    outputs_lease lease(*this);
    nd2.core->recover(rng_.next_u64(), lease.out);
    execute_effects(p, lease.out);
  });
}

}  // namespace remus::core
