#include "core/cluster.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace remus::core {

namespace {
constexpr std::uint64_t no_incarnation_check = ~0ULL;
}  // namespace

cluster::cluster(cluster_config cfg)
    : cfg_(std::move(cfg)), net_(cfg_.net, rng(cfg_.seed ^ 0x6e657477ULL)),
      rng_(cfg_.seed) {
  if (cfg_.n == 0) throw driver_error("cluster: n must be >= 1");
  if (!cfg_.policy.coherent()) throw driver_error("cluster: incoherent policy");
  nodes_.reserve(cfg_.n);
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    auto nd = std::make_unique<node>(cfg_.disk);
    nd->store = std::make_unique<storage::memory_store>();
    nd->core = std::make_unique<proto::quorum_core>(cfg_.policy, process_id{i}, cfg_.n,
                                                    *nd->store, rng_.next_u64());
    proto::outputs out;
    nd->core->start(out);
    if (!out.empty()) throw driver_error("cluster: start() must not emit effects");
    nodes_.push_back(std::move(nd));
  }
}

cluster::node& cluster::node_at(process_id p) {
  if (!p.valid() || p.index >= nodes_.size()) throw driver_error("cluster: bad process id");
  return *nodes_[p.index];
}

const cluster::node& cluster::node_at(process_id p) const {
  if (!p.valid() || p.index >= nodes_.size()) throw driver_error("cluster: bad process id");
  return *nodes_[p.index];
}

cluster::context& cluster::ctx_of(node& nd, proto::exec_context c) {
  return c == proto::exec_context::client ? nd.client_ctx : nd.listener_ctx;
}

bool cluster::is_ready(process_id p) const {
  const node& nd = node_at(p);
  return nd.up && nd.core->ready();
}

proto::quorum_core& cluster::core_of(process_id p) { return *node_at(p).core; }

storage::memory_store& cluster::store_of(process_id p) { return *node_at(p).store; }

std::uint64_t cluster::durable_stores(process_id p) const {
  return node_at(p).store->store_count();
}

// ---- Workload scheduling ----------------------------------------------------

cluster::op_handle cluster::submit_write(process_id p, value v, time_ns at) {
  (void)node_at(p);  // validate
  op_result r;
  r.submitted = true;
  r.is_read = false;
  r.p = p;
  r.v = v;
  results_.push_back(std::move(r));
  const op_handle h = results_.size() - 1;
  queue_.schedule_at(std::max(at, now()), [this, p, h] {
    node& nd = node_at(p);
    pending_invocation inv;
    inv.handle = h;
    inv.is_read = false;
    inv.v = results_[h].v;
    nd.op_queue.push_back(std::move(inv));
    dispatch_next_op(p);
  });
  return h;
}

cluster::op_handle cluster::submit_read(process_id p, time_ns at) {
  (void)node_at(p);
  op_result r;
  r.submitted = true;
  r.is_read = true;
  r.p = p;
  results_.push_back(std::move(r));
  const op_handle h = results_.size() - 1;
  queue_.schedule_at(std::max(at, now()), [this, p, h] {
    node& nd = node_at(p);
    pending_invocation inv;
    inv.handle = h;
    inv.is_read = true;
    nd.op_queue.push_back(std::move(inv));
    dispatch_next_op(p);
  });
  return h;
}

void cluster::submit_crash(process_id p, time_ns at) {
  (void)node_at(p);
  queue_.schedule_at(std::max(at, now()), [this, p] { do_crash(p); });
}

void cluster::submit_recover(process_id p, time_ns at) {
  if (cfg_.policy.crash_stop) {
    throw driver_error("cluster: recovery is impossible in the crash-stop model");
  }
  (void)node_at(p);
  queue_.schedule_at(std::max(at, now()), [this, p] { do_recover(p); });
}

void cluster::apply(const sim::fault_plan& plan, time_ns offset) {
  for (const auto& e : plan.events) {
    if (e.kind == sim::fault_kind::crash) {
      submit_crash(e.target, e.at + offset);
    } else {
      submit_recover(e.target, e.at + offset);
    }
  }
}

// ---- Execution ---------------------------------------------------------------

bool cluster::run_until_idle(std::uint64_t max_events) {
  queue_.run(max_events);
  return queue_.empty();
}

void cluster::run_for(time_ns d) { queue_.run_until(now() + d); }

value cluster::read(process_id p) {
  const op_handle h = submit_read(p, now());
  while (!results_[h].completed && queue_.step()) {
  }
  if (!results_[h].completed) throw driver_error("cluster: read did not complete");
  return results_[h].v;
}

void cluster::write(process_id p, value v) {
  const op_handle h = submit_write(p, std::move(v), now());
  while (!results_[h].completed && queue_.step()) {
  }
  if (!results_[h].completed) throw driver_error("cluster: write did not complete");
}

const cluster::op_result& cluster::result(op_handle h) const {
  if (h >= results_.size()) throw driver_error("cluster: bad op handle");
  return results_[h];
}

std::vector<history::tagged_op> cluster::tagged_operations() const {
  std::vector<history::tagged_op> out;
  for (const op_result& r : results_) {
    if (!r.completed) continue;
    history::tagged_op op;
    op.is_read = r.is_read;
    op.p = r.p;
    op.applied = r.applied;
    op.val = r.v;
    op.invoked_at = r.invoked_at;
    op.replied_at = r.completed_at;
    out.push_back(std::move(op));
  }
  return out;
}

metrics::op_collector cluster::collect() const {
  metrics::op_collector col;
  for (const op_result& r : results_) {
    if (r.completed) col.add(r.sample);
  }
  return col;
}

// ---- Node mechanics ----------------------------------------------------------

void cluster::dispatch_next_op(process_id p) {
  node& nd = node_at(p);
  if (!nd.up || !nd.core->is_up() || !nd.core->ready() || !nd.core->idle()) return;
  if (nd.active_op || nd.op_queue.empty()) return;
  if (nd.client_ctx.busy_until > now()) {
    const std::uint64_t inc = nd.incarnation;
    queue_.schedule_at(nd.client_ctx.busy_until, [this, p, inc] {
      if (node_at(p).incarnation == inc) dispatch_next_op(p);
    });
    return;
  }

  pending_invocation inv = std::move(nd.op_queue.front());
  nd.op_queue.pop_front();
  nd.client_ctx.busy_until = now() + cfg_.process_step_cost;
  nd.active_op = inv.handle;
  nd.active_invoked_at = now();

  proto::outputs out;
  if (inv.is_read) {
    recorder_.invoke_read(p, now());
    nd.core->invoke_read(out);
  } else {
    recorder_.invoke_write(p, inv.v, now());
    nd.core->invoke_write(inv.v, out);
  }
  // Register attribution for this op under its (origin, epoch, seq) identity.
  const attr_key key{p.index, nd.core->current_epoch(), nd.core->current_op_seq()};
  active_handles_[key] = inv.handle;
  attribution_[key];  // ensure entry
  execute_effects(p, out);
}

void cluster::deliver_message(process_id p, proto::message m, std::uint64_t) {
  node& nd = node_at(p);
  if (!nd.up || !nd.core->is_up()) return;  // dropped at a dead host
  const bool client_side = m.kind == proto::msg_kind::sn_ack ||
                           m.kind == proto::msg_kind::read_ack ||
                           m.kind == proto::msg_kind::write_ack;
  context& ctx = client_side ? nd.client_ctx : nd.listener_ctx;
  if (ctx.busy_until > now()) {
    // The owning thread is busy (e.g. blocked on a synchronous store);
    // the message waits in the socket buffer.
    queue_.schedule_at(ctx.busy_until, [this, p, m = std::move(m)] {
      deliver_message(p, m, no_incarnation_check);
    });
    return;
  }
  ctx.busy_until = now() + cfg_.process_step_cost;
  proto::outputs out;
  nd.core->on_message(m, out);
  execute_effects(p, out);
}

void cluster::deliver_log_done(process_id p, std::uint64_t token, std::string key,
                               bytes record, std::uint64_t incarnation) {
  node& nd = node_at(p);
  if (nd.incarnation != incarnation || !nd.up || !nd.core->is_up()) {
    // The process crashed while the store was in flight: under the
    // conservative durability model the record never hit the platter.
    return;
  }
  nd.store->store(key, record);  // durability point
  proto::outputs out;
  nd.core->on_log_done(token, out);
  execute_effects(p, out);
}

void cluster::deliver_timer(process_id p, std::uint64_t token, std::uint64_t incarnation) {
  node& nd = node_at(p);
  if (nd.incarnation != incarnation || !nd.up || !nd.core->is_up()) return;
  context& ctx = nd.client_ctx;
  if (ctx.busy_until > now()) {
    queue_.schedule_at(ctx.busy_until,
                       [this, p, token, incarnation] { deliver_timer(p, token, incarnation); });
    return;
  }
  ctx.busy_until = now() + cfg_.process_step_cost;
  proto::outputs out;
  nd.core->on_timer(token, out);
  execute_effects(p, out);
}

void cluster::route_message(process_id from, const std::vector<process_id>& tos,
                            const proto::message& m) {
  const auto deliveries =
      net_.route(now(), from, tos, proto::wire_size(m), static_cast<std::uint8_t>(m.kind),
                 m.op_seq, m.round);
  for (const auto& d : deliveries) {
    queue_.schedule_at(d.deliver_at, [this, to = d.to, m] {
      deliver_message(to, m, no_incarnation_check);
    });
  }
}

void cluster::execute_effects(process_id p, proto::outputs& out) {
  node& nd = node_at(p);

  for (proto::log_request& lr : out.logs) {
    const time_ns done_at = nd.disk.issue(now(), lr.record.size() + lr.key.size());
    ctx_of(nd, lr.ctx).busy_until = done_at;  // synchronous store blocks its thread
    if (lr.op_seq != 0) {
      attribution_[attr_key{lr.origin.index, lr.epoch, lr.op_seq}].logs += 1;
    } else {
      recovery_stores_ += 1;
    }
    queue_.schedule_at(done_at, [this, p, token = lr.token, key = lr.key,
                                 record = std::move(lr.record), inc = nd.incarnation] {
      deliver_log_done(p, token, key, record, inc);
    });
  }

  std::vector<process_id> everyone;
  for (const proto::broadcast_request& b : out.broadcasts) {
    if (everyone.empty()) {
      everyone.reserve(cfg_.n);
      for (std::uint32_t i = 0; i < cfg_.n; ++i) everyone.push_back(process_id{i});
    }
    const bool is_ack = b.msg.kind == proto::msg_kind::sn_ack ||
                        b.msg.kind == proto::msg_kind::read_ack ||
                        b.msg.kind == proto::msg_kind::write_ack;
    const process_id origin = is_ack ? no_process : b.msg.from;
    if (origin.valid() && b.msg.op_seq != 0) {
      attribution_[attr_key{origin.index, b.msg.epoch, b.msg.op_seq}].messages += cfg_.n;
    }
    route_message(p, everyone, b.msg);
  }

  for (const proto::send_request& s : out.sends) {
    const bool is_ack = s.msg.kind == proto::msg_kind::sn_ack ||
                        s.msg.kind == proto::msg_kind::read_ack ||
                        s.msg.kind == proto::msg_kind::write_ack;
    const process_id origin = is_ack ? s.to : s.msg.from;
    if (s.msg.op_seq != 0) {
      attribution_[attr_key{origin.index, s.msg.epoch, s.msg.op_seq}].messages += 1;
    }
    route_message(p, {s.to}, s.msg);
  }

  for (const proto::timer_request& t : out.timers) {
    queue_.schedule_at(now() + t.delay, [this, p, token = t.token, inc = nd.incarnation] {
      deliver_timer(p, token, inc);
    });
  }

  if (out.completion) finish_active_op(p, *out.completion);
  if (out.recovery_complete) {
    nd.recover_scheduled = false;
    dispatch_next_op(p);
  }
}

void cluster::finish_active_op(process_id p, const proto::op_outcome& oc) {
  node& nd = node_at(p);
  const attr_key key{p.index, nd.core->current_epoch(), oc.op_seq};
  const auto hit = active_handles_.find(key);
  if (hit == active_handles_.end()) return;  // recovery round, not a client op
  const op_handle h = hit->second;
  active_handles_.erase(hit);

  op_result& r = results_[h];
  r.completed = true;
  r.v = oc.result;
  r.applied = oc.applied;
  r.invoked_at = nd.active_invoked_at;
  r.completed_at = now();
  r.sample.is_read = oc.is_read;
  r.sample.latency = now() - nd.active_invoked_at;
  r.sample.causal_logs = oc.causal_logs;
  r.sample.round_trips = oc.round_trips;
  const auto& attr = attribution_[key];
  r.sample.total_logs = attr.logs;
  r.sample.messages = attr.messages;

  if (oc.is_read) {
    recorder_.reply_read(p, oc.result, now());
  } else {
    recorder_.reply_write(p, now());
  }
  nd.active_op.reset();
  dispatch_next_op(p);
}

void cluster::do_crash(process_id p) {
  node& nd = node_at(p);
  if (!nd.up) return;
  nd.up = false;
  nd.incarnation += 1;
  nd.core->crash();
  nd.client_ctx.busy_until = 0;
  nd.listener_ctx.busy_until = 0;
  nd.disk.reset(now());
  recorder_.crash(p, now());
  nd.active_op.reset();
  for (const pending_invocation& inv : nd.op_queue) {
    results_[inv.handle].dropped = true;  // never invoked; client vanished
  }
  nd.op_queue.clear();
}

void cluster::do_recover(process_id p) {
  node& nd = node_at(p);
  if (nd.up) return;
  nd.up = true;
  recorder_.recover(p, now());
  nd.client_ctx.busy_until = now() + cfg_.recovery_read_latency;
  nd.recover_scheduled = true;
  const std::uint64_t inc = nd.incarnation;
  // retrieve() of the stable records costs one synchronous disk read.
  queue_.schedule_at(now() + cfg_.recovery_read_latency, [this, p, inc] {
    node& nd2 = node_at(p);
    if (nd2.incarnation != inc || !nd2.up) return;  // crashed again meanwhile
    proto::outputs out;
    nd2.core->recover(rng_.next_u64(), out);
    execute_effects(p, out);
  });
}

}  // namespace remus::core
