// cluster: the simulated emulation driver — the library's main entry point.
//
// A cluster wires n protocol cores (one per process) to the discrete-event
// world: the fair-lossy network model, one disk model per process, the
// two-execution-context blocking semantics of the paper's implementation
// (client thread + listener thread, section V-A), crash/recovery injection,
// history recording, and per-operation metric attribution.
//
// Typical use:
//
//   core::cluster_config cfg;
//   cfg.n = 5;
//   cfg.policy = proto::persistent_policy();
//   core::cluster c(cfg);
//   auto w = c.submit_write(process_id{0}, value_of_u32(7), 0);
//   auto r = c.submit_read(process_id{1}, 2_ms);
//   c.run_until_idle();
//   assert(c.result(r).completed && value_as_u32(c.result(r).v) == 7);
//   auto verdict = history::check_persistent_atomicity(c.events());
//
// Determinism: every run is a pure function of (cluster_config, submitted
// workload); random delays/epochs derive from cfg.seed.
//
// Hot-path discipline: the cluster is the queue's `sim_executor` — simulator
// traffic is typed events, not closures; broadcast payloads are pooled
// refcounted messages shared by all n deliveries; attribution lives in a flat
// hash keyed on packed (origin, epoch, seq); and effect batches, route
// buffers, and unicast scratch are pooled so steady-state execution performs
// no heap allocation in the simulation substrate.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/config.h"
#include "history/recorder.h"
#include "history/tag_order.h"
#include "metrics/op_metrics.h"
#include "proto/quorum_core.h"
#include "proto/shared_message.h"
#include "sim/disk_model.h"
#include "sim/event_queue.h"
#include "sim/fault_plan.h"
#include "sim/network_model.h"
#include "sim/sim_event.h"
#include "storage/memory_store.h"
#include "storage/wal_store.h"

namespace remus::core {

/// How a crash treats the durable medium (WAL engine only; the map store
/// has no tail to tear). `clean` drops in-flight stores entirely; the
/// paper's conservative model. `corrupt_tail` additionally leaves what a
/// real dying disk leaves: a torn prefix of the in-flight frame, possibly
/// bit-flipped, plus stray garbage after the durable bytes — recovery must
/// stop at the damage and surface only the intact prefix. Durable
/// (fsync-acked) bytes are never touched, so per-key atomicity must hold.
enum class crash_style : std::uint8_t { clean = 0, corrupt_tail = 1 };

class cluster final : private sim::sim_executor {
 public:
  using op_handle = std::uint64_t;

  explicit cluster(cluster_config cfg);

  // ---- Workload scheduling (virtual times, >= now()) ----
  //
  // Submitting never runs the simulation; it enqueues an op_dispatch event
  // and returns a handle valid for the cluster's lifetime. Each process
  // executes one operation at a time (the paper's well-formedness
  // assumption): ops submitted while one is in flight queue behind it, and
  // ops queued at a crashed process are dropped (result().dropped).
  op_handle submit_write(process_id p, value v, time_ns at) {
    return submit_write(p, default_register, std::move(v), at);
  }
  op_handle submit_read(process_id p, time_ns at) {
    return submit_read(p, default_register, at);
  }
  /// Keyed write of register `reg` (see proto/quorum_core.h for the
  /// durability invariants an acked write satisfies).
  op_handle submit_write(process_id p, register_id reg, value v, time_ns at);
  /// Keyed read of register `reg`.
  op_handle submit_read(process_id p, register_id reg, time_ns at);
  /// Batched operations: one protocol operation over a set of distinct
  /// registers (one quorum round per phase for the whole set). The reply
  /// carries one (tag, value) entry per register; the history records one
  /// invoke/reply pair per register so per-key projections stay well-formed.
  op_handle submit_write_batch(process_id p, std::vector<proto::write_op> ops, time_ns at);
  op_handle submit_read_batch(process_id p, std::vector<register_id> regs, time_ns at);
  /// Crash at `at`: the process loses all volatile state (pending ops cut
  /// short, queued ops dropped) and keeps only stable storage. `style`
  /// picks what the crash leaves on the WAL engine's medium (no effect on
  /// the map store).
  void submit_crash(process_id p, time_ns at,
                    crash_style style = crash_style::clean);
  /// Recovery at `at`: runs the policy's Recover() procedure; the process
  /// accepts new invocations only once recovery completes (is_ready()).
  void submit_recover(process_id p, time_ns at);
  /// Schedules every event of `plan`, shifted by `offset`.
  void apply(const sim::fault_plan& plan, time_ns offset = 0);

  // ---- Execution ----
  /// Runs until no events remain. Returns false if `max_events` elapsed
  /// first (e.g. a majority is down forever and retransmission never ends).
  bool run_until_idle(std::uint64_t max_events = 50'000'000);
  /// Runs events with timestamps <= now()+d, then advances the clock.
  void run_for(time_ns d);

  // ---- Synchronous convenience (submit now + run until that op is done) ----
  value read(process_id p) { return read(p, default_register); }
  void write(process_id p, value v) { write(p, default_register, std::move(v)); }
  value read(process_id p, register_id reg);
  void write(process_id p, register_id reg, value v);

  // ---- Results & introspection ----
  struct op_result {
    bool submitted = false;
    bool completed = false;
    bool dropped = false;    // queued behind a crash, never invoked
    bool cut_short = false;  // invoked, then the process crashed mid-flight
    bool is_read = false;
    bool is_batch = false;
    process_id p;
    register_id reg = default_register;  // single-key ops
    value v;      // read: returned value; write: argument
    tag applied;  // tag returned/written
    /// Batched ops: the submitted per-register arguments (reads: empty
    /// values) and, once completed, the per-register (tag, value) results.
    std::vector<proto::write_op> batch_args;
    std::vector<proto::batch_entry> batch_result;
    time_ns invoked_at = 0;
    time_ns completed_at = 0;
    metrics::op_sample sample;
  };
  [[nodiscard]] const op_result& result(op_handle h) const;
  [[nodiscard]] history::history_log events() const { return recorder_.events(); }
  /// Completed operations with their applied tags, for Lemma-1 style
  /// tag-order verification (history::check_tag_order).
  [[nodiscard]] std::vector<history::tagged_op> tagged_operations() const;
  [[nodiscard]] metrics::op_collector collect() const;
  [[nodiscard]] time_ns now() const { return queue_.now(); }
  /// Total simulator events executed so far (throughput accounting).
  [[nodiscard]] std::uint64_t events_executed() const { return queue_.executed(); }
  /// Events currently scheduled (includes not-yet-fired stale timers).
  [[nodiscard]] std::size_t events_pending() const { return queue_.pending(); }
  /// Lower bound on the next scheduled event's virtual time (time_ns's max
  /// when idle); exact for imminent events. The shard router steps
  /// independent clusters in merged order of these bounds.
  [[nodiscard]] time_ns next_event_time() const { return queue_.next_time(); }
  [[nodiscard]] std::uint32_t size() const { return cfg_.n; }
  [[nodiscard]] const cluster_config& config() const { return cfg_; }
  [[nodiscard]] bool is_up(process_id p) const { return node_at(p).up; }
  [[nodiscard]] bool is_ready(process_id p) const;
  [[nodiscard]] proto::quorum_core& core_of(process_id p);
  [[nodiscard]] storage::stable_store& store_of(process_id p);
  /// The WAL engine behind `p`'s stable store, or nullptr when the cluster
  /// runs the plain map store (cfg.wal_storage == false). Corruption tests
  /// reach the raw log image through this.
  [[nodiscard]] storage::wal_store* wal_of(process_id p);
  [[nodiscard]] sim::network_model& network() { return net_; }
  /// Durable stable-storage writes per process (metrics).
  [[nodiscard]] std::uint64_t durable_stores(process_id p) const;
  /// Stores performed by recovery procedures (not attributed to any op).
  [[nodiscard]] std::uint64_t recovery_stores() const { return recovery_stores_; }
  /// Terminal state of an op: it completed, or it can never complete (queued
  /// op dropped behind a crash, or invoked op cut short by one). The shard
  /// router's migration waits on this before handing a key's state off.
  [[nodiscard]] bool op_terminal(op_handle h) const {
    const op_result& r = result(h);
    return r.completed || r.dropped || r.cut_short;
  }

  // ---- Register state transfer (shard rebalancing) ----
  //
  // The shard router moves a register between quorum groups by snapshotting
  // its state here and installing it there — an out-of-band transfer through
  // stable storage, not a protocol round (the router guarantees no operation
  // on the register is in flight on this cluster while it runs; see
  // shard_router.h for the window discipline that makes that sound).

  struct register_snapshot {
    register_id reg = default_register;
    /// Some process held state for the register (stable or volatile).
    bool has_state = false;
    /// Freshest (tag, value) any process holds — the max over every stable
    /// (written) record and every volatile replica slot. At least as fresh
    /// as the latest completed write (which is durable at a majority).
    tag written_ts;
    value written_val;
    /// Freshest pre-logged-but-unfinished write, when strictly newer than
    /// written_ts: a (writing) record whose round 2 never completed. The
    /// import finishes it, exactly like the source's own recovery would.
    bool has_pending = false;
    tag pending_ts;
    value pending_val;
  };

  /// Snapshot `reg`'s state across every process (up or crashed — stable
  /// storage survives crashes by definition). Read-only.
  [[nodiscard]] register_snapshot export_register(register_id reg) const;
  /// Install `snap` durably at EVERY process: (written) records adopt-if-
  /// newer in each stable store, live cores adopt volatile state (crashed
  /// ones restore it from the store on recovery). All n copies >= a
  /// majority, so an import is the two-phase read discipline's write-back
  /// round performed on the destination group. A pending write is finished
  /// (adopted as written) and its pre-log re-installed, mirroring Fig. 4's
  /// recovery. Idempotent; tags only advance.
  void import_register(const register_snapshot& snap);
  /// Drop `reg`'s state everywhere: volatile slots on live cores and the
  /// (writing)/(written)/(lease) records in every stable store. Called on
  /// the *source* group once the destination durably imported, so a later
  /// recovery here cannot resurrect a register this group stopped owning.
  /// Returns the number of lease-state entries (holdings and grantor
  /// records) dropped across the group — leases never survive a handoff,
  /// and the router records a nonzero drop in its migration log.
  std::uint32_t evict_register(register_id reg);
  /// Enumerate every register some process holds state for (stable records
  /// or volatile slots), deduplicated, ascending. Migration worklists.
  void for_each_register_with_state(const std::function<void(register_id)>& fn) const;

 private:
  struct context {
    time_ns busy_until = 0;
  };

  struct pending_invocation {
    op_handle handle = 0;
    bool is_read = false;
    // The payload is read from results_[handle].v at invoke time (it is the
    // write's recorded argument) — no per-invocation copy.
  };

  struct node {
    std::unique_ptr<storage::stable_store> store;
    /// Non-null iff `store` is the WAL engine (cfg.wal_storage).
    storage::wal_store* wal = nullptr;
    std::unique_ptr<proto::quorum_core> core;
    sim::disk_model disk;
    /// WAL engine only: the frame image and completion time of the last
    /// issued store, so a crash before `last_log_done_at` can leave a torn
    /// prefix of exactly the bytes that were mid-append.
    bytes last_log_frame;
    time_ns last_log_done_at = 0;
    context client_ctx;
    context listener_ctx;
    bool up = true;
    bool recover_scheduled = false;
    std::uint64_t incarnation = 0;
    std::deque<pending_invocation> op_queue;
    std::optional<op_handle> active_op;
    time_ns active_invoked_at = 0;
    /// Metric attribution for the active op. Effects carry their op's
    /// (origin, epoch, seq) identity; counts for the origin's in-flight op
    /// land here, and anything else (stale retransmissions, recovery
    /// rounds) is unattributed — exactly what the per-op samples report,
    /// since a sample freezes at completion. This keeps attribution O(1)
    /// with no per-op map entry.
    std::uint32_t attr_messages = 0;
    std::uint32_t attr_logs = 0;
    std::uint64_t attr_net_bytes = 0;

    explicit node(sim::disk_config dc) : disk(dc) {}
  };

  /// RAII lease of a pooled effect batch (reentrant: an effect handler may
  /// trigger another handler, so leases nest).
  struct outputs_lease {
    explicit outputs_lease(cluster& cl) : c(cl), out(cl.acquire_outputs()) {}
    ~outputs_lease() { c.release_outputs(out); }
    outputs_lease(const outputs_lease&) = delete;
    outputs_lease& operator=(const outputs_lease&) = delete;

    cluster& c;
    proto::outputs& out;
  };

  [[nodiscard]] node& node_at(process_id p);
  [[nodiscard]] const node& node_at(process_id p) const;
  /// Unchecked access for event handlers: targets were validated when the
  /// event was submitted (node_at keeps the checks for the public surface).
  [[nodiscard]] node& nd_of(process_id p) noexcept { return *nodes_[p.index]; }
  context& ctx_of(node& nd, proto::exec_context c);
  proto::outputs& acquire_outputs();
  void release_outputs(proto::outputs& out);

  void execute(sim::sim_event& ev) override;
  void handle_op_dispatch(const sim::sim_event& ev);
  void dispatch_next_op(process_id p);
  void deliver_message(process_id p, const proto::shared_message& mh);
  void deliver_log_done(process_id p, std::uint64_t token, storage::record_key key,
                        const bytes& record,
                        std::span<const storage::record_key> obsoletes,
                        std::uint64_t incarnation);
  void deliver_timer(process_id p, std::uint64_t token, std::uint64_t incarnation);
  void deliver_lease_expiry(process_id p, std::uint64_t token,
                            std::uint64_t incarnation);
  void execute_effects(process_id p, proto::outputs& out);
  void route_message(process_id from, const std::vector<process_id>& tos,
                     const proto::message& m);
  void do_crash(process_id p, crash_style style);
  void do_recover(process_id p);
  void finish_active_op(process_id p, const proto::op_outcome& oc);
  /// Count `n` messages (totalling `bytes` on the wire) against the origin's
  /// active op, if the identity (origin, epoch, seq) names it; stale traffic
  /// goes unattributed.
  void attribute_messages(process_id origin, std::uint64_t epoch,
                          std::uint64_t op_seq, std::uint32_t n,
                          std::uint64_t bytes) {
    if (!origin.valid() || op_seq == 0) return;
    node& o = nd_of(origin);
    if (o.active_op && o.core->current_op_seq() == op_seq &&
        o.core->current_epoch() == epoch) {
      o.attr_messages += n;
      o.attr_net_bytes += bytes;
    }
  }

  cluster_config cfg_;
  // The pool must outlive the queue: queued events hold message handles that
  // recycle into the pool when dropped (members destroy in reverse order).
  proto::message_pool msg_pool_;
  sim::event_queue queue_;
  sim::network_model net_;
  rng rng_;
  std::vector<std::unique_ptr<node>> nodes_;
  history::recorder recorder_;
  std::vector<op_result> results_;
  std::uint64_t recovery_stores_ = 0;

  // Single-consumer guard. A cluster is *shard-confined*: exactly one thread
  // may be inside its public surface at a time, but ownership may migrate —
  // the parallel shard driver hands a shard to a different worker each
  // window, with the barrier's release/acquire ordering making the handoff
  // race-free. Debug builds (and -DREMUS_SINGLE_CONSUMER_CHECKS, which the
  // TSan CI job sets so the RelWithDebInfo build keeps the checks) verify
  // the contract at every entry point: a second thread entering while one is
  // inside aborts with a diagnostic. Reentrant calls on the owning thread
  // nest (sync read/write re-enter the stepping path).
#if !defined(NDEBUG) || defined(REMUS_SINGLE_CONSUMER_CHECKS)
  struct consumer_guard {
    explicit consumer_guard(const cluster& c);
    ~consumer_guard();
    consumer_guard(const consumer_guard&) = delete;
    consumer_guard& operator=(const consumer_guard&) = delete;
    const cluster& c_;
  };
  mutable std::atomic<std::thread::id> consumer_{};
  mutable std::uint32_t consumer_depth_ = 0;
#else
  struct consumer_guard {
    explicit consumer_guard(const cluster&) {}
  };
#endif

  // Hot-path scratch (shard-confined like the cluster itself: only the
  // current consumer thread touches these, and none cross a reentrant call).
  std::vector<process_id> all_processes_;
  std::vector<process_id> unicast_to_;
  std::vector<register_id> batch_regs_scratch_;
  std::vector<sim::delivery> route_scratch_;
  // Effect-batch pool: leases nest strictly LIFO (handler reentrancy), so a
  // depth index into the slab list replaces a free list.
  std::vector<std::unique_ptr<proto::outputs>> outputs_slabs_;
  std::size_t outputs_depth_ = 0;
};

}  // namespace remus::core
