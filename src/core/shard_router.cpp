#include "core/shard_router.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.h"
#include "history/keyed.h"

namespace remus::core {

namespace {
constexpr time_ns no_time = std::numeric_limits<time_ns>::max();
/// Lockstep window: after every scheduling round all shard clocks sit on a
/// common boundary at most this far past the earliest pending event. Small
/// enough that cross-shard timestamps stay comparable at protocol
/// granularity, large enough that a round retires a whole message exchange.
constexpr time_ns lockstep_window = 100 * 1000;  // 100 us
}  // namespace

shard_router::shard_router(shard_router_config cfg)
    : cfg_(std::move(cfg)), ring_(cfg_.shards, cfg_.vnodes) {
  // (shards == 0 already rejected by ring_'s constructor.)
  shards_.reserve(cfg_.shards);
  split_ops_.resize(cfg_.shards);
  split_regs_.resize(cfg_.shards);
  split_pos_.resize(cfg_.shards);
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    cluster_config shard_cfg = cfg_.base;
    shard_cfg.seed = cfg_.base.seed + s * cfg_.seed_stride;
    shards_.push_back(std::make_unique<cluster>(std::move(shard_cfg)));
  }
}

cluster& shard_router::shard(std::uint32_t s) {
  if (s >= shards_.size()) throw driver_error("shard_router: bad shard index");
  return *shards_[s];
}

const cluster& shard_router::shard(std::uint32_t s) const {
  if (s >= shards_.size()) throw driver_error("shard_router: bad shard index");
  return *shards_[s];
}

void shard_router::check_local(process_id p) const {
  if (!p.valid() || p.index >= cfg_.base.n) {
    throw driver_error("shard_router: process id must be a local index < base.n");
  }
}

// ---- Workload scheduling ----------------------------------------------------

shard_router::op_handle shard_router::submit_write(process_id p, register_id reg,
                                                   value v, time_ns at) {
  check_local(p);
  const std::uint32_t s = shard_of(reg);
  routed_op op;
  op.is_read = false;
  op.p = p;
  op.subs.push_back({s, shards_[s]->submit_write(p, reg, std::move(v), at)});
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

shard_router::op_handle shard_router::submit_read(process_id p, register_id reg,
                                                  time_ns at) {
  check_local(p);
  const std::uint32_t s = shard_of(reg);
  routed_op op;
  op.is_read = true;
  op.p = p;
  op.subs.push_back({s, shards_[s]->submit_read(p, reg, at)});
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

shard_router::op_handle shard_router::submit_write_batch(
    process_id p, std::vector<proto::write_op> ops, time_ns at) {
  check_local(p);
  if (ops.empty()) throw driver_error("shard_router: empty write batch");
  for (auto& g : split_ops_) g.clear();
  for (auto& g : split_pos_) g.clear();
  for (std::uint32_t i = 0; i < ops.size(); ++i) {
    const std::uint32_t s = shard_of(ops[i].reg);
    split_ops_[s].push_back(std::move(ops[i]));
    split_pos_[s].push_back(i);
  }
  routed_op op;
  op.is_read = false;
  op.is_batch = true;
  op.p = p;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (split_ops_[s].empty()) continue;
    // Moving the scratch is safe: the next submit clears it before use.
    op.subs.push_back(
        {s, shards_[s]->submit_write_batch(p, std::move(split_ops_[s]), at)});
    op.original_pos.insert(op.original_pos.end(), split_pos_[s].begin(),
                           split_pos_[s].end());
  }
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

shard_router::op_handle shard_router::submit_read_batch(process_id p,
                                                        std::vector<register_id> regs,
                                                        time_ns at) {
  check_local(p);
  if (regs.empty()) throw driver_error("shard_router: empty read batch");
  for (auto& g : split_regs_) g.clear();
  for (auto& g : split_pos_) g.clear();
  for (std::uint32_t i = 0; i < regs.size(); ++i) {
    const std::uint32_t s = shard_of(regs[i]);
    split_regs_[s].push_back(regs[i]);
    split_pos_[s].push_back(i);
  }
  routed_op op;
  op.is_read = true;
  op.is_batch = true;
  op.p = p;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (split_regs_[s].empty()) continue;
    op.subs.push_back(
        {s, shards_[s]->submit_read_batch(p, std::move(split_regs_[s]), at)});
    op.original_pos.insert(op.original_pos.end(), split_pos_[s].begin(),
                           split_pos_[s].end());
  }
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

void shard_router::submit_crash(std::uint32_t s, process_id p, time_ns at) {
  shard(s).submit_crash(p, at);
}

void shard_router::submit_recover(std::uint32_t s, process_id p, time_ns at) {
  shard(s).submit_recover(p, at);
}

void shard_router::apply(std::uint32_t s, const sim::fault_plan& plan, time_ns offset) {
  shard(s).apply(plan, offset);
}

// ---- Execution ---------------------------------------------------------------

bool shard_router::run_until_idle(std::uint64_t max_events) {
  const std::uint64_t start = events_executed();
  for (;;) {
    // Merged-order scheduling: find the earliest pending event anywhere,
    // then run *every* shard through a lockstep window covering it. Shards
    // are independent, so intra-window interleaving cannot change any
    // shard's behavior; the window only keeps the clocks aligned.
    time_ns next = no_time;
    for (const auto& s : shards_) next = std::min(next, s->next_event_time());
    if (next == no_time) break;  // all queues drained
    const time_ns target = next + lockstep_window;
    for (const auto& s : shards_) {
      if (target > s->now()) s->run_for(target - s->now());
    }
    if (events_executed() - start > max_events) return false;
  }
  sync_clocks_to(now());
  return true;
}

void shard_router::run_for(time_ns d) { sync_clocks_to(now() + d); }

void shard_router::sync_clocks_to(time_ns t) {
  for (const auto& s : shards_) {
    if (t > s->now()) s->run_for(t - s->now());
  }
}

value shard_router::read(process_id p, register_id reg) {
  check_local(p);
  cluster& owner = owner_of(reg);
  value v = owner.read(p, reg);
  sync_clocks_to(owner.now());
  return v;
}

void shard_router::write(process_id p, register_id reg, value v) {
  check_local(p);
  cluster& owner = owner_of(reg);
  owner.write(p, reg, std::move(v));
  sync_clocks_to(owner.now());
}

// ---- Results & introspection -------------------------------------------------

const shard_router::op_result& shard_router::result(op_handle h) const {
  if (h >= ops_.size()) throw driver_error("shard_router: bad op handle");
  const routed_op& op = ops_[h];
  if (!op.merged_final) merge_result(op);
  return op.merged;
}

void shard_router::merge_result(const routed_op& op) const {
  op_result r;
  r.submitted = true;
  r.is_read = op.is_read;
  r.is_batch = op.is_batch;
  r.p = op.p;
  r.completed = true;
  r.invoked_at = no_time;
  if (op.is_batch) r.batch_result.resize(op.original_pos.size());
  std::size_t flat = 0;  // position in the grouped-by-shard flattening
  bool all_terminal = true;  // every sub either completed or dropped
  for (const sub_op& so : op.subs) {
    const cluster::op_result& sub = shards_[so.shard]->result(so.h);
    if (sub.dropped) r.dropped = true;
    if (!sub.completed) {
      r.completed = false;
      if (!sub.dropped) all_terminal = false;
    } else {
      r.invoked_at = std::min(r.invoked_at, sub.invoked_at);
      r.completed_at = std::max(r.completed_at, sub.completed_at);
    }
    if (op.is_batch) {
      if (sub.completed) {
        for (std::size_t j = 0; j < sub.batch_result.size(); ++j) {
          r.batch_result[op.original_pos[flat + j]] = sub.batch_result[j];
        }
      }
      flat += sub.batch_args.size();
    } else if (sub.completed) {
      r.reg = sub.reg;
      r.v = sub.v;
      r.applied = sub.applied;
    }
  }
  if (r.invoked_at == no_time) r.invoked_at = 0;
  op.merged = std::move(r);
  // Cache only once every sub-op has reached a terminal state: a merge with
  // one sub dropped but another still in flight must keep refreshing, or
  // the in-flight sub-batch's results would freeze as defaults forever.
  op.merged_final = all_terminal;
}

history::history_log shard_router::events() const {
  std::vector<history::history_log> logs;
  logs.reserve(shards_.size());
  for (const auto& s : shards_) logs.push_back(s->events());
  return history::merge_shard_histories(logs, cfg_.base.n);
}

std::vector<history::tagged_op> shard_router::tagged_operations() const {
  std::vector<history::tagged_op> out;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    for (history::tagged_op top : shards_[s]->tagged_operations()) {
      top.p = global_process(s, top.p);
      out.push_back(std::move(top));
    }
  }
  return out;
}

time_ns shard_router::now() const {
  time_ns t = 0;
  for (const auto& s : shards_) t = std::max(t, s->now());
  return t;
}

std::uint64_t shard_router::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->events_executed();
  return n;
}

std::size_t shard_router::events_pending() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->events_pending();
  return n;
}

}  // namespace remus::core
