#include "core/shard_router.h"

#include <algorithm>
#include <limits>
#include <thread>
#include <utility>

#include "common/error.h"
#include "history/keyed.h"

namespace remus::core {

namespace {
constexpr time_ns no_time = std::numeric_limits<time_ns>::max();
/// Lockstep window: after every scheduling round all shard clocks sit on a
/// common boundary at most this far past the earliest pending event. Small
/// enough that cross-shard timestamps stay comparable at protocol
/// granularity, large enough that a round retires a whole message exchange.
constexpr time_ns lockstep_window = 100 * 1000;  // 100 us
/// Chunk of the no-window drain fast path: events one shard runs between two
/// budget-check barriers. Big enough that barrier cost vanishes (tens of ms
/// of simulation per chunk), small enough that max_events stays enforced at
/// useful granularity.
constexpr std::uint64_t drain_chunk_events = 1u << 18;

std::uint32_t resolve_workers(std::uint32_t workers) {
  if (workers != 0) return workers;
  return std::max(1u, std::thread::hardware_concurrency());
}
}  // namespace

shard_router::shard_router(shard_router_config cfg)
    : cfg_(std::move(cfg)),
      driver_(sim::make_shard_driver(resolve_workers(cfg_.workers))),
      ring_(cfg_.shards, cfg_.vnodes, /*epoch=*/0) {
  // (shards == 0 already rejected by ring_'s constructor.)
  if (cfg_.drain_keys_per_pump == 0) {
    throw driver_error("shard_router: drain_keys_per_pump must be >= 1");
  }
  shards_.reserve(cfg_.shards);
  split_ops_.resize(cfg_.shards);
  split_regs_.resize(cfg_.shards);
  split_pos_.resize(cfg_.shards);
  wb_regs_scratch_.resize(cfg_.shards);
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    cluster_config shard_cfg = cfg_.base;
    shard_cfg.seed = cfg_.base.seed + s * cfg_.seed_stride;
    shards_.push_back(std::make_unique<cluster>(std::move(shard_cfg)));
  }
}

cluster& shard_router::shard(std::uint32_t s) {
  if (s >= shards_.size()) throw driver_error("shard_router: bad shard index");
  return *shards_[s];
}

const cluster& shard_router::shard(std::uint32_t s) const {
  if (s >= shards_.size()) throw driver_error("shard_router: bad shard index");
  return *shards_[s];
}

void shard_router::check_local(process_id p) const {
  if (!p.valid() || p.index >= cfg_.base.n) {
    throw driver_error("shard_router: process id must be a local index < base.n");
  }
}

// ---- Reconfiguration ---------------------------------------------------------

std::uint32_t shard_router::begin_add_shard() {
  if (migrating_) {
    throw driver_error("shard_router: a migration window is already open");
  }
  if (cfg_.base.policy.crash_stop) {
    // Handoff transfers a key's state through stable storage, which the
    // crash-stop model does not have: a completed write whose adopters all
    // crash-stop leaves nothing for export_register to find, so migrating
    // would convert the old shard's (legal) unavailability into a rollback
    // served by the new shard. Reconfiguration is a crash-recovery feature.
    throw driver_error(
        "shard_router: live rebalancing requires a crash-recovery policy "
        "(stable storage carries the migrated state)");
  }
  const std::uint32_t s = shard_count();

  // Spin up shard S with the same seed formula construction uses, so a
  // grown router is shard-for-shard identical to one built at S+1.
  cluster_config shard_cfg = cfg_.base;
  shard_cfg.seed = cfg_.base.seed + s * cfg_.seed_stride;
  shards_.push_back(std::make_unique<cluster>(std::move(shard_cfg)));
  shards_.back()->run_for(now());  // align the newborn's clock to the fleet
  split_ops_.resize(s + 1);
  split_regs_.resize(s + 1);
  split_pos_.resize(s + 1);
  wb_regs_scratch_.resize(s + 1);

  // Install the epoch+1 topology; the retiring ring answers for moved keys
  // until their handoff.
  prev_ring_ = std::make_unique<hash_ring>(ring_);
  ring_ = prev_ring_->grow(s);
  delta_ = hash_ring::diff(*prev_ring_, ring_);
  migrating_ = true;
  cfg_.shards = s + 1;
  migrated_.clear();
  migrated_total_ = 0;

  // Drain worklist: every moved key holding state on its old shard. Keys
  // the workload writes migrate themselves; the pump moves the rest.
  drain_worklist_.clear();
  for (std::uint32_t sh = 0; sh < s; ++sh) {
    shards_[sh]->for_each_register_with_state([&](register_id reg) {
      if (delta_.moved(reg) && prev_ring_->shard_of(reg) == sh) {
        drain_worklist_.push_back(reg);
      }
    });
  }
  std::sort(drain_worklist_.begin(), drain_worklist_.end());
  drain_worklist_.erase(std::unique(drain_worklist_.begin(), drain_worklist_.end()),
                        drain_worklist_.end());

  // Operations already routed to an old shard and still live block their
  // keys' handoff until they settle (the quiet-point rule). The watermark
  // skips the all-terminal prefix so repeated window opens on a long-lived
  // router do not re-walk history that cannot contain live ops (completion
  // is roughly in submission order, so the prefix advances steadily).
  while (scan_from_ < ops_.size()) {
    const routed_op& op = ops_[scan_from_];
    bool terminal = true;
    for (const sub_op& so : op.subs) {
      if (!shards_[so.shard]->op_terminal(so.h)) terminal = false;
    }
    if (!terminal || op.writebacks_pending > 0) break;
    ++scan_from_;
  }
  for (std::size_t i = scan_from_; i < ops_.size(); ++i) {
    const routed_op& op = ops_[i];
    for (const sub_op& so : op.subs) {
      cluster& c = *shards_[so.shard];
      if (c.op_terminal(so.h)) continue;
      const cluster::op_result& res = c.result(so.h);
      const auto consider = [&](register_id reg) {
        if (!delta_.moved(reg) || prev_ring_->shard_of(reg) != so.shard) return;
        track_old_op(reg, so.shard, so.h);
        add_to_worklist(reg);
      };
      if (res.is_batch) {
        for (const proto::write_op& a : res.batch_args) consider(a.reg);
      } else {
        consider(res.reg);
      }
    }
  }
  moved_total_ = drain_worklist_.size();
  return s;
}

void shard_router::finish_add_shard() {
  if (!migrating_) throw driver_error("shard_router: no migration window open");
  if (!migration_drained()) {
    throw driver_error(
        "shard_router: migration window not drained — run the router until "
        "migration_drained() before finish_add_shard()");
  }
  migrating_ = false;
  prev_ring_.reset();
  delta_ = hash_ring::delta{};
  migrated_.clear();
  old_inflight_.clear();
}

bool shard_router::old_shard_quiet(register_id reg) {
  std::vector<sub_op>* live = old_inflight_.find(reg);
  if (live == nullptr) return true;
  for (const sub_op& so : *live) {
    if (!shards_[so.shard]->op_terminal(so.h)) return false;
  }
  old_inflight_.erase(reg);
  return true;
}

void shard_router::track_old_op(register_id reg, std::uint32_t shard,
                                cluster::op_handle h) {
  old_inflight_[reg].push_back({shard, h});
}

void shard_router::add_to_worklist(register_id reg) {
  const auto it =
      std::lower_bound(drain_worklist_.begin(), drain_worklist_.end(), reg);
  if (it != drain_worklist_.end() && *it == reg) return;
  drain_worklist_.insert(it, reg);
  moved_total_ += 1;
}

void shard_router::handoff_key(register_id reg, migration_event::cause why,
                               time_ns at) {
  const std::uint32_t from = prev_ring_->shard_of(reg);
  const std::uint32_t to = ring_.shard_of(reg);
  // A write-handoff can reach a moved key the worklist never enumerated (no
  // state, no in-flight ops at window open); count it so migrated_key_count
  // stays a subset of moved_key_count.
  if (!std::binary_search(drain_worklist_.begin(), drain_worklist_.end(), reg)) {
    moved_total_ += 1;
  }
  // Snapshot the old group's freshest state (written + any pending pre-log),
  // install it durably at every destination process, then strip it from the
  // source so no future source recovery resurrects a key it stopped owning.
  const cluster::register_snapshot snap = shards_[from]->export_register(reg);
  if (cfg_.test_fault != shard_router_config::injected_fault::drop_handoff_state) {
    shards_[to]->import_register(snap);
  }
  const std::uint32_t leases_dropped = shards_[from]->evict_register(reg);
  migrated_[reg] = true;
  migrated_total_ += 1;
  migration_log_.push_back({reg, from, to, at, why});
  if (leases_dropped > 0) {
    // The source group held read-lease state for the key; the eviction just
    // revoked it (holdings, grantor registries, and stable records alike).
    // Record the drop so migration schedules expose it — a leased read
    // served by the old shard after this instant would be a routing bug.
    migration_log_.push_back({reg, from, to, at, migration_event::cause::lease_drop});
  }
}

std::uint32_t shard_router::route_write_key(register_id reg) {
  if (!migrating_ || !delta_.moved(reg) || is_migrated(reg)) {
    return ring_.shard_of(reg);
  }
  if (old_shard_quiet(reg)) {
    // Writes-to-new: hand the key off at this quiet point, then let the
    // write run on the destination — its sequence-number query sees the
    // imported tag, so the new epoch's tags strictly dominate the old's.
    handoff_key(reg, migration_event::cause::write_handoff, now());
    return ring_.shard_of(reg);
  }
  // The old shard still has live operations on this key: route there too
  // (late handoff — the drain migrates the key at its next quiet point).
  // The write creates state on the old shard, so the key must be on the
  // drain worklist even if it held nothing at window open.
  add_to_worklist(reg);
  return prev_ring_->shard_of(reg);
}

std::uint32_t shard_router::route_read_key(register_id reg, bool* moved_read) {
  *moved_read = false;
  if (!migrating_ || !delta_.moved(reg) || is_migrated(reg)) {
    return ring_.shard_of(reg);
  }
  // Reads-from-old: the retiring shard stays authoritative until handoff.
  *moved_read = true;
  return prev_ring_->shard_of(reg);
}

void shard_router::register_writeback(std::size_t op_index) {
  // The sub-ops were just pushed; attach one write-back per old-shard sub
  // that touched moved keys (collected in wb_regs_scratch_ by the caller).
  routed_op& op = ops_[op_index];
  for (const sub_op& so : op.subs) {
    std::vector<register_id>& regs = wb_regs_scratch_[so.shard];
    if (regs.empty()) continue;
    for (const register_id reg : regs) track_old_op(reg, so.shard, so.h);
    op.writebacks_pending += 1;
    writebacks_.push_back({so.shard, so.h, op_index, std::move(regs)});
    wb_regs_scratch_[so.shard].clear();  // moved-from: restore a known state
  }
}

void shard_router::pump_migration() {
  if (!migrating_) return;

  // 1. Read write-backs: once a window read's quorum round on the old shard
  //    completes, anchor its per-key (tag, value) at the new shard before
  //    the router-level operation reports completion.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < writebacks_.size(); ++i) {
    pending_writeback& wb = writebacks_[i];
    cluster& old_sh = *shards_[wb.old_shard];
    if (!old_sh.op_terminal(wb.h)) {
      if (kept != i) writebacks_[kept] = std::move(wb);
      kept += 1;
      continue;
    }
    const cluster::op_result& res = old_sh.result(wb.h);
    if (res.completed) {
      for (const register_id reg : wb.regs) {
        if (is_migrated(reg)) continue;  // handed off meanwhile: already fresh
        cluster::register_snapshot snap;
        snap.reg = reg;
        if (res.is_batch) {
          for (const proto::batch_entry& e : res.batch_result) {
            if (e.reg != reg) continue;
            snap.has_state = initial_tag < e.ts;
            snap.written_ts = e.ts;
            snap.written_val = e.val;
            break;
          }
        } else {
          snap.has_state = initial_tag < res.applied;
          snap.written_ts = res.applied;
          snap.written_val = res.v;
        }
        if (!snap.has_state) continue;  // never-written key: nothing to anchor
        if (cfg_.test_fault ==
            shard_router_config::injected_fault::skip_read_writeback) {
          continue;
        }
        const std::uint32_t to = ring_.shard_of(reg);
        shards_[to]->import_register(snap);
        migration_log_.push_back(
            {reg, wb.old_shard, to, now(), migration_event::cause::read_writeback});
      }
    }
    // Dropped / cut-short reads resolve with nothing to write back.
    routed_op& op = ops_[wb.op_index];
    if (op.writebacks_pending > 0) op.writebacks_pending -= 1;
    if (op.writebacks_pending == 0) {
      op.writeback_at = now();
      op.merged_final = false;  // re-merge with the write-back accounted
    }
  }
  writebacks_.resize(kept);

  // 2. Background drain: hand off up to drain_keys_per_pump quiet keys per
  //    scheduling round, ascending key order (deterministic schedule).
  std::uint32_t budget = cfg_.drain_keys_per_pump;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < drain_worklist_.size(); ++i) {
    const register_id reg = drain_worklist_[i];
    if (is_migrated(reg)) continue;  // a write handed it off already
    if (budget == 0 || !old_shard_quiet(reg)) {
      drain_worklist_[keep++] = reg;
      continue;
    }
    handoff_key(reg, migration_event::cause::drain, now());
    budget -= 1;
  }
  drain_worklist_.resize(keep);
}

// ---- Workload scheduling ----------------------------------------------------

shard_router::op_handle shard_router::submit_write(process_id p, register_id reg,
                                                   value v, time_ns at) {
  check_local(p);
  const std::uint32_t s = route_write_key(reg);
  routed_op op;
  op.is_read = false;
  op.p = p;
  op.subs.push_back({s, shards_[s]->submit_write(p, reg, std::move(v), at)});
  // Still old-routed after routing = the late-handoff path: the live old op
  // set grows by this write, and the drain waits for it.
  const bool old_routed = migrating_ && delta_.moved(reg) && !is_migrated(reg);
  ops_.push_back(std::move(op));
  if (old_routed) track_old_op(reg, s, ops_.back().subs[0].h);
  return ops_.size() - 1;
}

shard_router::op_handle shard_router::submit_read(process_id p, register_id reg,
                                                  time_ns at) {
  check_local(p);
  bool moved_read = false;
  const std::uint32_t s = route_read_key(reg, &moved_read);
  routed_op op;
  op.is_read = true;
  op.p = p;
  op.subs.push_back({s, shards_[s]->submit_read(p, reg, at)});
  ops_.push_back(std::move(op));
  const std::size_t idx = ops_.size() - 1;
  if (moved_read) {
    wb_regs_scratch_[s].clear();
    wb_regs_scratch_[s].push_back(reg);
    register_writeback(idx);
  }
  return idx;
}

shard_router::op_handle shard_router::submit_write_batch(
    process_id p, std::vector<proto::write_op> ops, time_ns at) {
  check_local(p);
  if (ops.empty()) throw driver_error("shard_router: empty write batch");
  for (auto& g : split_ops_) g.clear();
  for (auto& g : split_pos_) g.clear();
  for (auto& g : wb_regs_scratch_) g.clear();
  for (std::uint32_t i = 0; i < ops.size(); ++i) {
    const register_id reg = ops[i].reg;
    const std::uint32_t s = route_write_key(reg);
    // Moved keys that stayed old-routed (busy old shard) must pin their
    // handoff open until this sub-batch settles.
    if (migrating_ && delta_.moved(reg) && !is_migrated(reg)) {
      wb_regs_scratch_[s].push_back(reg);
    }
    split_ops_[s].push_back(std::move(ops[i]));
    split_pos_[s].push_back(i);
  }
  routed_op op;
  op.is_read = false;
  op.is_batch = true;
  op.p = p;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (split_ops_[s].empty()) continue;
    // Moving the scratch is safe: the next submit clears it before use.
    op.subs.push_back(
        {s, shards_[s]->submit_write_batch(p, std::move(split_ops_[s]), at)});
    op.original_pos.insert(op.original_pos.end(), split_pos_[s].begin(),
                           split_pos_[s].end());
    for (const register_id reg : wb_regs_scratch_[s]) {
      track_old_op(reg, s, op.subs.back().h);
    }
    wb_regs_scratch_[s].clear();
  }
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

shard_router::op_handle shard_router::submit_read_batch(process_id p,
                                                        std::vector<register_id> regs,
                                                        time_ns at) {
  check_local(p);
  if (regs.empty()) throw driver_error("shard_router: empty read batch");
  for (auto& g : split_regs_) g.clear();
  for (auto& g : split_pos_) g.clear();
  for (auto& g : wb_regs_scratch_) g.clear();
  for (std::uint32_t i = 0; i < regs.size(); ++i) {
    bool moved_read = false;
    const std::uint32_t s = route_read_key(regs[i], &moved_read);
    if (moved_read) wb_regs_scratch_[s].push_back(regs[i]);
    split_regs_[s].push_back(regs[i]);
    split_pos_[s].push_back(i);
  }
  routed_op op;
  op.is_read = true;
  op.is_batch = true;
  op.p = p;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (split_regs_[s].empty()) continue;
    op.subs.push_back(
        {s, shards_[s]->submit_read_batch(p, std::move(split_regs_[s]), at)});
    op.original_pos.insert(op.original_pos.end(), split_pos_[s].begin(),
                           split_pos_[s].end());
  }
  ops_.push_back(std::move(op));
  const std::size_t idx = ops_.size() - 1;
  register_writeback(idx);  // no-op when no moved keys were old-routed
  return idx;
}

void shard_router::submit_crash(std::uint32_t s, process_id p, time_ns at,
                                crash_style style) {
  shard(s).submit_crash(p, at, style);
}

void shard_router::submit_recover(std::uint32_t s, process_id p, time_ns at) {
  shard(s).submit_recover(p, at);
}

void shard_router::apply(std::uint32_t s, const sim::fault_plan& plan, time_ns offset) {
  shard(s).apply(plan, offset);
}

// ---- Execution ---------------------------------------------------------------

bool shard_router::run_until_idle(std::uint64_t max_events) {
  const std::uint64_t start = events_executed();
  const auto count = static_cast<std::uint32_t>(shards_.size());
  for (;;) {
    if (!migrating_) {
      // No window open: shards share nothing at all, so each drains its own
      // queue straight to idle — no lockstep, barriers only at budget
      // checks. Chunked so max_events stays enforced; each worker writes
      // only its own idle slot, read after the barrier. Clock alignment is
      // restored by the final sync_clocks_to (mid-run clock skew between
      // independent shards is unobservable).
      idle_scratch_.assign(count, 1);
      driver_->run_indexed(count, [&](std::uint32_t s) {
        if (!shards_[s]->run_until_idle(drain_chunk_events)) idle_scratch_[s] = 0;
      });
      if (events_executed() - start > max_events) return false;
      if (std::find(idle_scratch_.begin(), idle_scratch_.end(), 0) ==
          idle_scratch_.end()) {
        break;
      }
      continue;
    }
    // Merged-order scheduling: find the earliest pending event anywhere,
    // then run *every* shard through a lockstep window covering it. Shards
    // are independent, so intra-window interleaving cannot change any
    // shard's behavior; the window only keeps the clocks aligned — which
    // the migration machinery needs, because handoff timestamps and the
    // drain schedule read the shared clock. The per-window advance fans out
    // over the driver; pump_migration (all cross-shard work) runs at the
    // barrier, where every shard sits on the common boundary.
    time_ns next = no_time;
    for (const auto& s : shards_) next = std::min(next, s->next_event_time());
    if (next == no_time) {
      // Queues drained. With a window open the remaining worklist keys are
      // all quiet now; keep pumping (still budgeted per round) until the
      // drain converges or stalls (a stall is impossible by construction,
      // but guards against an unforeseen live-lock).
      if (!migration_drained()) {
        const std::size_t before = drain_worklist_.size() + writebacks_.size();
        pump_migration();
        if (drain_worklist_.size() + writebacks_.size() < before) continue;
      }
      break;
    }
    const time_ns target = next + lockstep_window;
    driver_->run_indexed(count, [&](std::uint32_t s) {
      cluster& c = *shards_[s];
      if (target > c.now()) c.run_for(target - c.now());
    });
    pump_migration();
    if (events_executed() - start > max_events) return false;
  }
  sync_clocks_to(now());
  return true;
}

void shard_router::run_for(time_ns d) {
  sync_clocks_to(now() + d);
  pump_migration();
}

void shard_router::sync_clocks_to(time_ns t) {
  driver_->run_indexed(static_cast<std::uint32_t>(shards_.size()),
                       [&](std::uint32_t s) {
                         cluster& c = *shards_[s];
                         if (t > c.now()) c.run_for(t - c.now());
                       });
}

value shard_router::read(process_id p, register_id reg) {
  check_local(p);
  bool moved_read = false;
  const std::uint32_t s = route_read_key(reg, &moved_read);
  cluster& owner = *shards_[s];
  value v = owner.read(p, reg);
  sync_clocks_to(owner.now());
  if (moved_read && !is_migrated(reg) &&
      cfg_.test_fault != shard_router_config::injected_fault::skip_read_writeback) {
    // Synchronous form of the window read's write-back: anchor the freshest
    // old-shard state at the destination before returning the value.
    const cluster::register_snapshot snap = owner.export_register(reg);
    if (snap.has_state) {
      const std::uint32_t to = ring_.shard_of(reg);
      shards_[to]->import_register(snap);
      migration_log_.push_back(
          {reg, s, to, now(), migration_event::cause::read_writeback});
    }
  }
  pump_migration();
  return v;
}

void shard_router::write(process_id p, register_id reg, value v) {
  check_local(p);
  const std::uint32_t s = route_write_key(reg);
  cluster& owner = *shards_[s];
  owner.write(p, reg, std::move(v));
  sync_clocks_to(owner.now());
  pump_migration();
}

// ---- Results & introspection -------------------------------------------------

const shard_router::op_result& shard_router::result(op_handle h) const {
  if (h >= ops_.size()) throw driver_error("shard_router: bad op handle");
  const routed_op& op = ops_[h];
  if (!op.merged_final) merge_result(op);
  return op.merged;
}

void shard_router::merge_result(const routed_op& op) const {
  op_result r;
  r.submitted = true;
  r.is_read = op.is_read;
  r.is_batch = op.is_batch;
  r.p = op.p;
  r.completed = true;
  r.invoked_at = no_time;
  if (op.is_batch) r.batch_result.resize(op.original_pos.size());
  std::size_t flat = 0;  // position in the grouped-by-shard flattening
  bool all_terminal = true;  // every sub either completed or dropped
  for (const sub_op& so : op.subs) {
    const cluster::op_result& sub = shards_[so.shard]->result(so.h);
    if (sub.dropped) r.dropped = true;
    if (!sub.completed) {
      r.completed = false;
      if (!sub.dropped && !sub.cut_short) all_terminal = false;
    } else {
      r.invoked_at = std::min(r.invoked_at, sub.invoked_at);
      r.completed_at = std::max(r.completed_at, sub.completed_at);
    }
    if (op.is_batch) {
      if (sub.completed) {
        for (std::size_t j = 0; j < sub.batch_result.size(); ++j) {
          r.batch_result[op.original_pos[flat + j]] = sub.batch_result[j];
        }
      }
      flat += sub.batch_args.size();
    } else if (sub.completed) {
      r.reg = sub.reg;
      r.v = sub.v;
      r.applied = sub.applied;
    }
  }
  // A window read is complete only once its cross-shard write-back landed
  // ("before returning" — the two-phase discipline across shards).
  if (op.writebacks_pending > 0) {
    r.completed = false;
    all_terminal = false;
  } else if (r.completed) {
    r.completed_at = std::max(r.completed_at, op.writeback_at);
  }
  if (r.invoked_at == no_time) r.invoked_at = 0;
  op.merged = std::move(r);
  // Cache only once every sub-op has reached a terminal state: a merge with
  // one sub dropped but another still in flight must keep refreshing, or
  // the in-flight sub-batch's results would freeze as defaults forever.
  op.merged_final = all_terminal;
}

history::history_log shard_router::events() const {
  std::vector<history::history_log> logs;
  logs.reserve(shards_.size());
  for (const auto& s : shards_) logs.push_back(s->events());
  return history::merge_shard_histories(logs, cfg_.base.n);
}

std::vector<history::tagged_op> shard_router::tagged_operations() const {
  std::vector<history::tagged_op> out;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    for (history::tagged_op top : shards_[s]->tagged_operations()) {
      top.p = global_process(s, top.p);
      out.push_back(std::move(top));
    }
  }
  return out;
}

time_ns shard_router::now() const {
  time_ns t = 0;
  for (const auto& s : shards_) t = std::max(t, s->now());
  return t;
}

std::uint64_t shard_router::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->events_executed();
  return n;
}

std::size_t shard_router::events_pending() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->events_pending();
  return n;
}

}  // namespace remus::core
